/**
 * @file
 * Tests for the fleet orchestrator: the QoS-aware shared queue and
 * FleetOrchestrator itself — above all that every session's decision
 * log stays bit-identical to a standalone ReadUntilSession::run()
 * regardless of fleet size, worker count, QoS class or backpressure,
 * that Stat preempts Research without starving it, and that admission
 * control throttles instead of dropping.
 *
 * The QosQueueTest cases are sub-second and carry the `quick` label;
 * the FleetTest cases run real flowcell fleets under the `stream`
 * label (one process under TSan, see CMakeLists).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "fleet/orchestrator.hpp"
#include "fleet/qos_queue.hpp"
#include "pipeline/experiments.hpp"
#include "sdtw/filter.hpp"
#include "stream/session.hpp"

namespace sf::fleet {
namespace {

// Same TSan compute-shrink policy as tests/test_stream.cpp: every
// DP-cell access is instrumented under ThreadSanitizer, so shrink the
// fixture *compute* (reads, stages, fleet matrix) while keeping the
// *concurrency* (shared queue, QoS interleaving, worker contention)
// at full strength.  Every assertion is an internal-consistency pin
// (fleet vs standalone), so it holds at any scale.
#if defined(__SANITIZE_THREAD__)
constexpr std::size_t kCalibrationReads = 4;
constexpr std::size_t kReadsPerSession = 4;
constexpr int kChannels = 4;
constexpr std::size_t kStages = 4;
constexpr std::size_t kMaxFleet = 2;
// Race coverage wants contention, not matrix breadth: the Release
// build sweeps the full fleet-size x worker-count determinism matrix,
// so under TSan only the most contended cell runs — every
// synchronization edge (shared queue, QoS classes, multi-worker
// folds, concurrent snapshots) is still exercised.
const std::vector<std::size_t> kFleetSizes = {kMaxFleet};
const std::vector<unsigned> kWorkerCounts = {4};
constexpr std::size_t kStatReadsFactor = 2;
constexpr std::size_t kSerialFoldSessions = 1;
#else
constexpr std::size_t kCalibrationReads = 40;
constexpr std::size_t kReadsPerSession = 16;
constexpr int kChannels = 4;
constexpr std::size_t kStages = 9;
constexpr std::size_t kMaxFleet = 4;
const std::vector<std::size_t> kFleetSizes = {1, 2, kMaxFleet};
const std::vector<unsigned> kWorkerCounts = {1, 4, 8};
constexpr std::size_t kStatReadsFactor = 3;
constexpr std::size_t kSerialFoldSessions = 2;
#endif

// ---------------------------------------------------------------- //
//                      QoS queue (quick label)                      //
// ---------------------------------------------------------------- //

/** Minimal queue payload: QosBoundedQueue needs only .sessionId. */
struct Item
{
    std::uint32_t sessionId = 0;
    int value = 0;
};

TEST(QosQueueTest, StatDispatchesBeforeQueuedResearch)
{
    QosBoundedQueue<Item> queue(16, /*statBurst=*/4);
    const auto research = queue.registerSession(QosClass::Research, 0);
    const auto stat = queue.registerSession(QosClass::Stat, 0);

    // Research arrives first, Stat after — Stat still dispatches
    // first, and dispatches are class-pure.
    ASSERT_TRUE(queue.push(research, Item{research, 1}));
    ASSERT_TRUE(queue.push(research, Item{research, 2}));
    ASSERT_TRUE(queue.push(stat, Item{stat, 3}));

    std::vector<Item> batch;
    QosClass served = QosClass::Research;
    ASSERT_TRUE(queue.popBatch(batch, 8, &served));
    EXPECT_EQ(served, QosClass::Stat);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].value, 3);

    batch.clear();
    ASSERT_TRUE(queue.popBatch(batch, 8, &served));
    EXPECT_EQ(served, QosClass::Research);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].value, 1); // FIFO within the class
    EXPECT_EQ(batch[1].value, 2);
}

TEST(QosQueueTest, ResearchStarvationIsBoundedByStatBurst)
{
    constexpr std::size_t kBurst = 2;
    QosBoundedQueue<Item> queue(64, kBurst);
    const auto stat = queue.registerSession(QosClass::Stat, 0);
    const auto research = queue.registerSession(QosClass::Research, 0);

    // Both classes saturated: Research must be served at least every
    // kBurst+1 dispatches even though Stat never runs dry.
    for (int i = 0; i < 12; ++i)
        ASSERT_TRUE(queue.push(stat, Item{stat, i}));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(queue.push(research, Item{research, 100 + i}));

    std::vector<QosClass> order;
    std::vector<Item> batch;
    QosClass served = QosClass::Research;
    // Single-item dispatches expose the exact interleaving.
    while (queue.size() > 0) {
        batch.clear();
        ASSERT_TRUE(queue.popBatch(batch, 1, &served));
        order.push_back(served);
    }
    std::size_t stat_streak = 0;
    std::size_t research_seen = 0;
    for (QosClass cls : order) {
        if (cls == QosClass::Stat) {
            ++stat_streak;
            // The bound applies while Research work is waiting; once
            // the Research queue drains, Stat may streak freely.
            if (research_seen < 4) {
                EXPECT_LE(stat_streak, kBurst)
                    << "research starved past the statBurst bound";
            }
        } else {
            stat_streak = 0;
            ++research_seen;
        }
    }
    EXPECT_EQ(research_seen, 4u);
}

TEST(QosQueueTest, AdmissionQuotaBlocksUntilDispatchFreesIt)
{
    QosBoundedQueue<Item> queue(16, 4);
    const auto s = queue.registerSession(QosClass::Research, /*quota=*/1);

    ASSERT_TRUE(queue.push(s, Item{s, 1}));
    EXPECT_EQ(queue.depth(s), 1u);

    // Second push exceeds the quota: it must block (throttle), not
    // drop, and complete once a dispatch frees the slot.
    std::atomic<bool> pushed{false};
    std::thread pusher([&] {
        ASSERT_TRUE(queue.push(s, Item{s, 2}));
        pushed.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pushed.load(std::memory_order_acquire))
        << "push over quota must block";

    std::vector<Item> batch;
    ASSERT_TRUE(queue.popBatch(batch, 8, nullptr));
    pusher.join();
    EXPECT_TRUE(pushed.load(std::memory_order_acquire));
    EXPECT_EQ(queue.depth(s), 1u); // item 2 queued now
    batch.clear();
    ASSERT_TRUE(queue.popBatch(batch, 8, nullptr));
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].value, 2);
    EXPECT_EQ(queue.depth(s), 0u);
}

TEST(QosQueueTest, CloseWakesBlockedProducerAndDrainsConsumers)
{
    QosBoundedQueue<Item> queue(1, 4);
    const auto s = queue.registerSession(QosClass::Stat, 0);
    ASSERT_TRUE(queue.push(s, Item{s, 1})); // at capacity

    std::atomic<bool> refused{false};
    std::thread pusher([&] {
        // Blocks on capacity; close() must wake it with false.
        refused.store(!queue.push(s, Item{s, 2}),
                      std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    queue.close();
    pusher.join();
    EXPECT_TRUE(refused.load(std::memory_order_acquire));

    // Consumers drain what was queued, then see false.
    std::vector<Item> batch;
    EXPECT_TRUE(queue.popBatch(batch, 8, nullptr));
    ASSERT_EQ(batch.size(), 1u);
    batch.clear();
    EXPECT_FALSE(queue.popBatch(batch, 8, nullptr));
}

TEST(QosQueueTest, LingerExpiryOnDrainedOpenQueueKeepsWorkerAlive)
{
    // Regression: a lingering worker whose deadline expires after a
    // concurrent worker drained the (still open) queue must go back
    // to waiting for work, not return false — a false return here
    // permanently retires the worker's dispatch loop and silently
    // degrades the pool.
    QosBoundedQueue<Item> queue(8, 4);
    const auto s = queue.registerSession(QosClass::Research, 0);
    constexpr auto kLinger = std::chrono::milliseconds(100);

    std::vector<Item> dispatched;
    std::thread worker([&] {
        std::vector<Item> batch;
        while (queue.popBatch(batch, 4, nullptr, kLinger)) {
            dispatched.insert(dispatched.end(), batch.begin(),
                              batch.end());
            batch.clear();
        }
    });

    // Item 1 parks the worker in its linger (a batch of 4 cannot
    // fill), and an eager pop from this thread then drains the queue
    // out from under it.
    ASSERT_TRUE(queue.push(s, Item{s, 1}));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::vector<Item> stolen;
    ASSERT_TRUE(queue.popBatch(stolen, 4, nullptr));
    ASSERT_EQ(stolen.size(), 1u);
    EXPECT_EQ(stolen[0].value, 1);

    // Let the worker's linger deadline expire on the now-empty, still
    // open queue, then offer new work: a worker that wrongly treated
    // the expiry as closed-and-drained leaves item 2 undelivered.
    std::this_thread::sleep_for(2 * kLinger);
    ASSERT_TRUE(queue.push(s, Item{s, 2}));
    queue.close(); // cuts any in-flight linger short, never past work
    worker.join();
    ASSERT_EQ(dispatched.size(), 1u)
        << "worker retired from an open queue after its linger "
           "expired empty";
    EXPECT_EQ(dispatched[0].value, 2);
}

TEST(QosQueueTest, LingerFillTargetIsTheServedClassNotTheTotal)
{
    // Dispatches are class-pure, so the linger's fill target must be
    // the depth of the class the dispatch will serve: four queued
    // Research items must not end a linger that is building a Stat
    // batch of one.
    QosBoundedQueue<Item> queue(16, /*statBurst=*/8);
    const auto stat = queue.registerSession(QosClass::Stat, 0);
    const auto research = queue.registerSession(QosClass::Research, 0);

    ASSERT_TRUE(queue.push(stat, Item{stat, 1}));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(queue.push(research, Item{research, 100 + i}));

    // Stat is non-empty and the streak is fresh, so the dispatch
    // serves Stat; a total_-based fill predicate would see 5 >= 4 and
    // cut the linger with a 1/4-full Stat batch immediately, which is
    // exactly the shredding the linger exists to prevent.  With the
    // class-pure target the linger runs its course, and whatever Stat
    // work arrived meanwhile dispatches together.
    std::thread filler([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        for (int i = 2; i <= 4; ++i)
            ASSERT_TRUE(queue.push(stat, Item{stat, i}));
    });
    std::vector<Item> batch;
    QosClass served = QosClass::Research;
    ASSERT_TRUE(queue.popBatch(batch, 4, &served,
                               std::chrono::milliseconds(500)));
    filler.join();
    EXPECT_EQ(served, QosClass::Stat);
    EXPECT_EQ(batch.size(), 4u)
        << "linger ended on total depth instead of the served class";
}

TEST(QosQueueTest, InvalidParametersAreFatal)
{
    EXPECT_THROW(QosBoundedQueue<Item>(0, 4), FatalError);
    // statBurst = 0 would invert the priority (Research always
    // preferred), so it is rejected rather than silently honoured.
    EXPECT_THROW(QosBoundedQueue<Item>(16, 0), FatalError);
    QosBoundedQueue<Item> queue(4, 1);
    EXPECT_THROW(queue.push(7, Item{7, 0}), FatalError);
}

// ---------------------------------------------------------------- //
//                     fleet fixtures (stream label)                 //
// ---------------------------------------------------------------- //

class FleetTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kChunk = 1600; // 0.4 s at 4 kHz

    static const sdtw::SquiggleFilterClassifier &
    classifier()
    {
        static const sdtw::SquiggleFilterClassifier instance = [] {
            sdtw::SquiggleFilterClassifier c(
                pipeline::streamVirusSquiggle());
            c.setStages(sdtw::uniformStageSchedule(
                kChunk, kStages,
                pipeline::calibratedStreamThreshold(kCalibrationReads,
                                                    0.5, 11)));
            return c;
        }();
        return instance;
    }

    /** Per-session flowcell config: distinct seed per session. */
    static stream::SessionConfig
    sessionConfig(std::size_t i)
    {
        stream::SessionConfig cfg;
        cfg.channels = kChannels;
        cfg.chunkSeconds = double(kChunk) / cfg.sampleRateHz;
        cfg.seed = 0xbeef + i;
        return cfg;
    }

    /** Per-session read set: distinct synthesis seed per session. */
    static const signal::Dataset &
    sessionReads(std::size_t i)
    {
        return pipeline::makeStreamDataset(kReadsPerSession, 0.5,
                                           21 + std::uint64_t(i));
    }

    /** Standalone (private-pool) run of session @p i — the oracle the
        fleet logs must match bit-exactly. */
    static const stream::SessionResult &
    standalone(std::size_t i)
    {
        static std::vector<stream::SessionResult> cache = [] {
            std::vector<stream::SessionResult> runs;
            for (std::size_t s = 0; s < kMaxFleet; ++s)
                runs.push_back(
                    stream::ReadUntilSession(classifier(),
                                             sessionConfig(s))
                        .run(sessionReads(s).reads));
            return runs;
        }();
        return cache.at(i);
    }

    static void
    expectLogsEqual(const stream::SessionResult &fleet_run,
                    const stream::SessionResult &oracle,
                    const std::string &context)
    {
        ASSERT_EQ(fleet_run.log.size(), oracle.log.size()) << context;
        for (std::size_t i = 0; i < fleet_run.log.size(); ++i) {
            const auto &a = oracle.log[i];
            const auto &b = fleet_run.log[i];
            EXPECT_EQ(a.order, b.order) << context;
            EXPECT_EQ(a.channel, b.channel) << context;
            EXPECT_EQ(a.readId, b.readId) << context;
            EXPECT_EQ(a.keep, b.keep) << context;
            EXPECT_EQ(a.cost, b.cost) << context;
            EXPECT_EQ(a.samplesUsed, b.samplesUsed) << context;
            EXPECT_EQ(a.stagesRun, b.stagesRun) << context;
            EXPECT_DOUBLE_EQ(a.virtualSec, b.virtualSec) << context;
        }
        EXPECT_EQ(fleet_run.stats.chunksEmitted,
                  oracle.stats.chunksEmitted)
            << context;
        EXPECT_EQ(fleet_run.stats.decisions, oracle.stats.decisions)
            << context;
        EXPECT_EQ(fleet_run.stats.dpRowsFolded,
                  oracle.stats.dpRowsFolded)
            << context;
    }

    /** Build an orchestrator with @p fleet_size sessions, alternating
        QoS classes, over the shared-pool @p config. */
    static FleetResult
    runFleet(std::size_t fleet_size, FleetConfig config)
    {
        FleetOrchestrator fleet(config);
        for (std::size_t i = 0; i < fleet_size; ++i) {
            SessionSpec spec;
            spec.name = "cell-" + std::to_string(i);
            spec.classifier = &classifier();
            spec.config = sessionConfig(i);
            spec.qos =
                i % 2 == 0 ? QosClass::Stat : QosClass::Research;
            spec.reads = sessionReads(i).reads;
            fleet.addSession(std::move(spec));
        }
        return fleet.run();
    }
};

// ---------------------------------------------------------------- //
//           determinism: fleet logs == standalone logs              //
// ---------------------------------------------------------------- //

TEST_F(FleetTest, PerSessionLogsMatchStandaloneAcrossFleetAndWorkers)
{
    // The tentpole invariant: sharding a session into any fleet mix,
    // at any worker count, under any QoS interleaving, must not
    // change one bit of its decision log.  Virtual time depends only
    // on (seed, config, reads); the shared pool is wall-clock only.
    for (std::size_t fleet_size : kFleetSizes) {
        for (unsigned workers : kWorkerCounts) {
            FleetConfig cfg;
            cfg.workers = workers;
            cfg.queueCapacity = 32;
            cfg.dispatchBatch = 16;
            const FleetResult result = runFleet(fleet_size, cfg);
            ASSERT_EQ(result.sessions.size(), fleet_size);
            for (std::size_t i = 0; i < fleet_size; ++i) {
                expectLogsEqual(
                    result.sessions[i].result, standalone(i),
                    "fleet=" + std::to_string(fleet_size) +
                        " workers=" + std::to_string(workers) +
                        " session=" + std::to_string(i));
            }
        }
    }
}

TEST_F(FleetTest, PerSessionLogsMatchStandaloneWithAffinityPinning)
{
    // Same determinism matrix with topology-aware worker placement
    // turned on (pinning off is the matrix above).  Pinning routes
    // threads onto planned cores; on hosts without affinity support
    // it degrades to a no-op.  Either way it may only move wall-clock
    // latency — every decision log must stay bit-identical.
    for (unsigned workers : kWorkerCounts) {
        FleetConfig cfg;
        cfg.workers = workers;
        cfg.queueCapacity = 32;
        cfg.dispatchBatch = 16;
        cfg.pinWorkers = true;
        const FleetResult result = runFleet(kMaxFleet, cfg);
        ASSERT_EQ(result.sessions.size(), kMaxFleet);
        for (std::size_t i = 0; i < kMaxFleet; ++i) {
            expectLogsEqual(
                result.sessions[i].result, standalone(i),
                "pinned workers=" + std::to_string(workers) +
                    " session=" + std::to_string(i));
        }
    }
}

TEST_F(FleetTest, SerialFoldFleetMatchesLaneBatchedFleet)
{
    // laneBatching only changes wall-clock throughput, fleet-wide.
    FleetConfig cfg;
    cfg.workers = 2;
    cfg.laneBatching = false;
    const FleetResult serial = runFleet(kSerialFoldSessions, cfg);
    for (std::size_t i = 0; i < kSerialFoldSessions; ++i)
        expectLogsEqual(serial.sessions[i].result, standalone(i),
                        "serial-fold session=" + std::to_string(i));
}

// ---------------------------------------------------------------- //
//                      QoS under real load                          //
// ---------------------------------------------------------------- //

TEST_F(FleetTest, StatPreemptsResearchUnderSharedPoolContention)
{
    // One worker serving a Stat and a Research flowcell with the
    // same workload: every dispatch prefers Stat, so Stat decisions
    // must clear the queue faster.  Medians (not tails) keep this
    // robust on a noisy host; the queue-level interleaving is pinned
    // deterministically in QosQueueTest.  A virtual decision latency
    // of one chunk period keeps every channel's request in flight
    // while the next chunk surfaces, so both sessions hold several
    // queued requests at once and the dispatch preference actually
    // decides who waits.
    FleetConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 8; // sustained queuing
    cfg.statBurst = 4;
    cfg.dispatchBatch = 1; // serve one request per pull: strict order
    // The Stat session gets a multiple of the reads so it stays
    // active for the Research session's whole lifetime.  Otherwise
    // Stat — being preferred — finishes early and Research's
    // uncontended tail drags its median below Stat's, inverting the
    // comparison.
    const signal::Dataset &stat_reads = pipeline::makeStreamDataset(
        kReadsPerSession * kStatReadsFactor, 0.5, 77);
    FleetOrchestrator fleet(cfg);
    for (std::size_t i = 0; i < 2; ++i) {
        SessionSpec spec;
        spec.name = "cell-" + std::to_string(i);
        spec.classifier = &classifier();
        spec.config = sessionConfig(i);
        spec.config.decisionLatencySec = spec.config.chunkSeconds;
        spec.qos = i == 0 ? QosClass::Stat : QosClass::Research;
        spec.reads =
            i == 0 ? stat_reads.reads : sessionReads(i).reads;
        fleet.addSession(std::move(spec));
    }
    const FleetResult result = fleet.run();

    ASSERT_EQ(result.sessions[0].qos, QosClass::Stat);
    ASSERT_EQ(result.sessions[1].qos, QosClass::Research);
    const auto &stat = result.sessions[0].result.stats;
    const auto &research = result.sessions[1].result.stats;
    EXPECT_GT(stat.decisions, 0u);
    EXPECT_GT(research.decisions, 0u);
    EXPECT_LT(stat.latency.p50us, research.latency.p50us);

    // Both classes were actually dispatched — Research was not
    // starved behind the Stat preference.
    const auto &by_class = result.snapshot.dispatchesByClass;
    EXPECT_GT(by_class[std::size_t(QosClass::Stat)], 0u);
    EXPECT_GT(by_class[std::size_t(QosClass::Research)], 0u);
}

// ---------------------------------------------------------------- //
//                  backpressure and admission                       //
// ---------------------------------------------------------------- //

TEST_F(FleetTest, BackpressureThrottlesButNeverDropsAChunk)
{
    // Worst-case contention: a 2-slot shared queue and a 1-request
    // admission quota per session.  Sessions block at capture time;
    // every read of every session must still be decided exactly once
    // with a log identical to the uncontended standalone run.
    FleetConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 2;
    cfg.sessionQuota = 1;
    cfg.dispatchBatch = 2;
    const FleetResult result = runFleet(2, cfg);

    for (std::size_t i = 0; i < 2; ++i) {
        const auto &run = result.sessions[i].result;
        expectLogsEqual(run, standalone(i),
                        "backpressure session=" + std::to_string(i));
        const auto &reads = sessionReads(i).reads;
        std::vector<bool> seen(reads.size(), false);
        for (const auto &rec : run.log) {
            ASSERT_LT(std::size_t(rec.readId), seen.size());
            EXPECT_FALSE(seen[std::size_t(rec.readId)])
                << "read decided twice";
            seen[std::size_t(rec.readId)] = true;
        }
        EXPECT_EQ(run.log.size(), reads.size());
    }
    // Nothing left queued after a clean drain.
    for (const auto &session : result.snapshot.sessions)
        EXPECT_EQ(session.queueDepth, 0u);
}

// ---------------------------------------------------------------- //
//                  teardown and observability                       //
// ---------------------------------------------------------------- //

TEST_F(FleetTest, CleanTeardownMidLoadLeavesConsistentPartialLogs)
{
    // Stop every virtual clock after two virtual seconds while the
    // shared queue is still full of in-flight work: the fleet must
    // drain, join, and hand back consistent partial results.
    FleetConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 2;
    FleetOrchestrator fleet(cfg);
    for (std::size_t i = 0; i < 2; ++i) {
        SessionSpec spec;
        spec.name = "cell-" + std::to_string(i);
        spec.classifier = &classifier();
        spec.config = sessionConfig(i);
        spec.config.maxVirtualHours = 2.0 / 3600.0;
        spec.qos = QosClass::Stat;
        spec.reads = sessionReads(i).reads;
        fleet.addSession(std::move(spec));
    }
    const FleetResult result = fleet.run();
    for (const auto &session : result.sessions) {
        const auto &run = session.result;
        EXPECT_LT(run.log.size(), kReadsPerSession);
        EXPECT_EQ(run.stats.readsKept + run.stats.readsEjected,
                  run.log.size());
        for (std::size_t i = 1; i < run.log.size(); ++i)
            EXPECT_GE(run.log[i].virtualSec,
                      run.log[i - 1].virtualSec);
    }
    for (const auto &session : result.snapshot.sessions)
        EXPECT_TRUE(session.finished);
}

TEST_F(FleetTest, SnapshotIsConsistentMidRunAndFinal)
{
    FleetConfig cfg;
    cfg.workers = 2;
    FleetOrchestrator fleet(cfg);
    for (std::size_t i = 0; i < 2; ++i) {
        SessionSpec spec;
        spec.name = "cell-" + std::to_string(i);
        spec.classifier = &classifier();
        spec.config = sessionConfig(i);
        spec.qos = i == 0 ? QosClass::Stat : QosClass::Research;
        spec.reads = sessionReads(i).reads;
        fleet.addSession(std::move(spec));
    }

    // Poll snapshots concurrently with run(): chunk counts must be
    // monotone and every field internally consistent.  (Under TSan
    // this also audits the snapshot path against the worker pool.)
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> polls{0};
    std::thread poller([&] {
        std::uint64_t last_chunks = 0;
        while (!done.load(std::memory_order_acquire)) {
            const FleetSnapshot snap = fleet.snapshot();
            // Until run() publishes started_, snapshot() returns an
            // empty view (registration-phase contract, so it never
            // races addSession) — only live polls are audited.
            if (!snap.sessions.empty()) {
                EXPECT_GE(snap.chunksEmitted, last_chunks);
                last_chunks = snap.chunksEmitted;
                EXPECT_GE(snap.laneOccupancy, 0.0);
                EXPECT_LE(snap.laneOccupancy, 1.0);
                EXPECT_EQ(snap.sessions.size(), 2u);
                polls.fetch_add(1, std::memory_order_relaxed);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    });
    const FleetResult result = fleet.run();
    done.store(true, std::memory_order_release);
    poller.join();
    EXPECT_GT(polls.load(std::memory_order_relaxed), 0u);

    const FleetSnapshot &snap = result.snapshot;
    std::uint64_t per_session_chunks = 0;
    for (const auto &session : snap.sessions) {
        per_session_chunks += session.chunksEmitted;
        EXPECT_TRUE(session.finished);
        EXPECT_EQ(session.queueDepth, 0u);
    }
    EXPECT_EQ(snap.chunksEmitted, per_session_chunks);
    EXPECT_EQ(snap.chunksEmitted,
              result.sessions[0].result.stats.chunksEmitted +
                  result.sessions[1].result.stats.chunksEmitted);
    EXPECT_GT(snap.dispatches, 0u);
    EXPECT_GE(snap.meanBatchSize, 1.0);
    EXPECT_GT(snap.wallSeconds, 0.0);
    EXPECT_GT(snap.laneSlots, 0u);

    // The JSON rendering carries the same aggregates.
    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"chunks_per_sec\""), std::string::npos);
    EXPECT_NE(json.find("\"lane_occupancy\""), std::string::npos);
    EXPECT_NE(json.find("\"cell-1\""), std::string::npos);
    EXPECT_NE(json.find("\"stat\""), std::string::npos);
}

// ---------------------------------------------------------------- //
//                         misconfiguration                          //
// ---------------------------------------------------------------- //

TEST_F(FleetTest, MisconfiguredFleetsAreFatal)
{
    {
        FleetOrchestrator fleet(FleetConfig{});
        SessionSpec spec;
        spec.name = "no-classifier";
        EXPECT_THROW(fleet.addSession(std::move(spec)), FatalError);
    }
    {
        // Kernel-config disagreement: one shared worker kernel cannot
        // serve two different recurrences.
        static const sdtw::SquiggleFilterClassifier vanilla(
            pipeline::streamVirusSquiggle(), sdtw::vanillaConfig());
        FleetOrchestrator fleet(FleetConfig{});
        SessionSpec a;
        a.name = "hardware";
        a.classifier = &classifier();
        a.reads = sessionReads(0).reads;
        fleet.addSession(std::move(a));
        SessionSpec b;
        b.name = "vanilla";
        b.classifier = &vanilla;
        b.reads = sessionReads(1).reads;
        EXPECT_THROW(fleet.addSession(std::move(b)), FatalError);
    }
    {
        FleetOrchestrator fleet(FleetConfig{});
        EXPECT_THROW(fleet.run(), FatalError);
    }
    {
        FleetConfig cfg;
        cfg.dispatchBatch = 0;
        EXPECT_THROW(FleetOrchestrator{cfg}, FatalError);
    }
}

} // namespace
} // namespace sf::fleet
