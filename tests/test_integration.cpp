/**
 * @file
 * Cross-module property sweeps and failure injection: invariants that
 * span several subsystems, parameterised over seeds so each run
 * exercises a different corner of the input space deterministically.
 */

#include <gtest/gtest.h>

#include "basecall/oracle.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "genome/mutate.hpp"
#include "genome/synthetic.hpp"
#include "hw/accelerator.hpp"
#include "hw/asic_model.hpp"
#include "pipeline/experiments.hpp"
#include "readuntil/model.hpp"
#include "sdtw/filter.hpp"
#include "sdtw/normalizer.hpp"
#include "sdtw/threshold.hpp"
#include "signal/dataset.hpp"

namespace sf {
namespace {

// ---------------------------------------------------------------- //
//        classifier invariance under pore gain/offset shifts        //
// ---------------------------------------------------------------- //

class GainInvarianceTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GainInvarianceTest, CostStableAcrossPoreBiasConditions)
{
    // The same molecule measured under different bias voltages must
    // produce nearly the same alignment cost — the whole point of the
    // normaliser (Figure 8).
    const auto &virus = pipeline::sarsCov2Genome();
    const auto fragment = virus.slice(3000 + 512 * GetParam(), 400);

    const sdtw::QuantSdtw engine(sdtw::hardwareConfig());
    const auto &ref = pipeline::sarsCov2Squiggle();

    std::vector<Cost> costs;
    for (double offset_stdv : {0.0, 6.0, 14.0}) {
        signal::SimulatorConfig config;
        config.gainStdv = offset_stdv > 0.0 ? 0.06 : 0.0;
        config.offsetStdvPa = offset_stdv;
        const signal::SignalSimulator sim(
            pipeline::defaultKmerModel(), config);
        signal::ReadRecord read;
        read.bases = fragment;
        Rng rng(GetParam() * 1000 + std::uint64_t(offset_stdv));
        sim.simulate(read, rng);
        if (read.raw.size() < 2000)
            GTEST_SKIP() << "fragment too short for the prefix";
        const auto query = sdtw::MeanMadNormalizer::normalize(
            std::span<const RawSample>(read.raw).subspan(0, 2000));
        costs.push_back(
            engine.align(std::span<const NormSample>(query),
                         std::span<const NormSample>(ref.samples()))
                .cost);
    }
    // All bias conditions must land in the same cost regime (well
    // under typical background costs ~20000 at this prefix).
    for (Cost c : costs) {
        EXPECT_LT(c, 12000u);
        EXPECT_GT(c, 100u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GainInvarianceTest,
                         ::testing::Range<std::uint64_t>(0, 6));

// ---------------------------------------------------------------- //
//            oracle error rate sweep is monotone in F1              //
// ---------------------------------------------------------------- //

TEST(OracleSweep, IdentityDegradesMonotonically)
{
    const auto dataset = pipeline::makeCovidDataset(3, 0x5eed);
    const signal::ReadRecord *longest = nullptr;
    for (const auto &read : dataset.reads) {
        if (read.isTarget() &&
            (longest == nullptr ||
             read.bases.size() > longest->bases.size())) {
            longest = &read;
        }
    }
    ASSERT_NE(longest, nullptr);

    double previous = 1.1;
    for (double rate : {0.0, 0.03, 0.08, 0.15}) {
        basecall::ErrorProfile profile;
        profile.substitutionRate = rate * 0.6;
        profile.insertionRate = rate * 0.2;
        profile.deletionRate = rate * 0.2;
        profile.seed = 1;
        const basecall::OracleBasecaller oracle(profile);
        const double identity = basecall::basecallIdentity(
            oracle.callAll(*longest), longest->bases);
        EXPECT_LT(identity, previous + 0.02);
        previous = identity;
    }
    EXPECT_LT(previous, 0.9); // 15% injected errors must show
}

// ---------------------------------------------------------------- //
//       accelerator == software classifier on whole batches         //
// ---------------------------------------------------------------- //

TEST(BatchEquivalence, AcceleratorAgreesWithSoftwareClassifier)
{
    const auto &ref = pipeline::sarsCov2Squiggle();
    const auto dataset = pipeline::makeCovidDataset(8, 0xba7c4);

    sdtw::SquiggleFilterClassifier classifier(ref);
    classifier.setSingleStage(2000, 9000);

    hw::AcceleratorConfig config;
    hw::Accelerator accel(ref, config);
    std::vector<hw::DispatchedRead> outcomes;
    accel.processBatch(dataset.reads, classifier.stages(), &outcomes);

    ASSERT_EQ(outcomes.size(), dataset.reads.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto sw = classifier.classify(dataset.reads[i].raw);
        EXPECT_EQ(outcomes[i].result.classification.keep, sw.keep);
        EXPECT_EQ(outcomes[i].result.classification.cost, sw.cost);
    }
}

// ---------------------------------------------------------------- //
//                        failure injection                          //
// ---------------------------------------------------------------- //

TEST(FailureInjection, AllRailSignalStillClassifies)
{
    // A saturated ADC (stuck pore) must not crash the filter.  Note
    // the honest behaviour: a constant signal normalises to all-zero
    // codes, which alias cheaply onto mid-level reference stretches,
    // so sDTW alone may keep it — which is why real sequencing stacks
    // detect stuck pores upstream of Read Until.  The invariant here
    // is a deterministic, crash-free decision.
    const auto &ref = pipeline::sarsCov2Squiggle();
    sdtw::SquiggleFilterClassifier classifier(ref);
    classifier.setSingleStage(2000, 8000);

    std::vector<RawSample> stuck(2500, kAdcMax);
    const auto a = classifier.classify(stuck);
    const auto b = classifier.classify(stuck);
    EXPECT_EQ(a.keep, b.keep);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.samplesUsed, 2000u);
}

TEST(FailureInjection, AlternatingRailSignalIsHandled)
{
    const auto &ref = pipeline::sarsCov2Squiggle();
    sdtw::SquiggleFilterClassifier classifier(ref);
    classifier.setSingleStage(2000, 8000);

    std::vector<RawSample> noisy(2500);
    for (std::size_t i = 0; i < noisy.size(); ++i)
        noisy[i] = i % 2 ? kAdcMax : 0;
    const auto result = classifier.classify(noisy);
    EXPECT_FALSE(result.keep); // nothing biological looks like this
}

TEST(FailureInjection, TinyReadFallsBackToScaledThreshold)
{
    const auto &ref = pipeline::sarsCov2Squiggle();
    sdtw::SquiggleFilterClassifier classifier(ref);
    classifier.setSingleStage(2000, 8000);

    const auto dataset = pipeline::makeCovidDataset(2, 0x511);
    for (const auto &read : dataset.reads) {
        if (!read.isTarget())
            continue;
        // 300-sample prefix: far below the stage length.
        const auto result =
            classifier.classify(read.prefix(300));
        EXPECT_EQ(result.samplesUsed, 300u);
        // Decision must be made (keep or eject), not crash.
        SUCCEED();
        break;
    }
}

// ---------------------------------------------------------------- //
//       runtime model consistency across the threshold sweep        //
// ---------------------------------------------------------------- //

TEST(RuntimeSweep, RuntimeIsUnimodalishInThreshold)
{
    // As the threshold loosens from 0 (eject all) to infinity (keep
    // all), modelled runtime must fall from "never finishes" to a
    // minimum and rise back to the no-RU baseline — the U-shape of
    // Figure 17b.
    const auto dataset = pipeline::makeCovidDataset(16, 0x1717);
    const auto costs =
        sdtw::collectCosts(pipeline::sarsCov2Squiggle(), dataset.reads,
                           2000, sdtw::hardwareConfig());
    const auto roc = sdtw::sweepThresholds(costs, 40);

    readuntil::SequencingParams params;
    params.targetFraction = 0.01;
    const readuntil::ReadUntilModel model(params);
    const double baseline = model.withoutReadUntil().hours;

    double min_hours = 1e18;
    double last_hours = 0.0;
    for (const auto &pt : roc.points()) {
        if (pt.tpr <= 0.01)
            continue;
        readuntil::ClassifierParams c;
        c.tpr = pt.tpr;
        c.fpr = pt.fpr;
        const double hours = model.withReadUntil(c).hours;
        min_hours = std::min(min_hours, hours);
        last_hours = hours;
    }
    EXPECT_LT(min_hours, 0.5 * baseline); // real benefit at the dip
    EXPECT_NEAR(last_hours, baseline, 0.05 * baseline); // keep-all end
}

// ---------------------------------------------------------------- //
//                  power gating and timing sanity                   //
// ---------------------------------------------------------------- //

TEST(AsicSanity, ThroughputScalesWithTilesAndPrefix)
{
    const hw::AsicModel asic(2000, 5);
    const std::size_t ref = pipeline::sarsCov2Squiggle().size();
    EXPECT_NEAR(asic.chipThroughputSamplesPerSec(2000, ref, 5),
                5.0 * asic.chipThroughputSamplesPerSec(2000, ref, 1),
                1.0);
    // Longer prefixes amortise the reference streaming: higher
    // throughput per tile.
    EXPECT_GT(hw::AsicModel::tileThroughputSamplesPerSec(4000, ref),
              hw::AsicModel::tileThroughputSamplesPerSec(2000, ref));
}

} // namespace
} // namespace sf
