/**
 * @file
 * Tests for the basecalling substrates: identity metric, oracle error
 * injection, Viterbi pore-model decoding, and the Guppy performance
 * model's calibration against the paper's published numbers.
 */

#include <gtest/gtest.h>

#include "basecall/basecaller.hpp"
#include "basecall/oracle.hpp"
#include "basecall/perf_model.hpp"
#include "basecall/viterbi.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "genome/synthetic.hpp"
#include "pipeline/experiments.hpp"
#include "signal/simulator.hpp"

namespace sf::basecall {
namespace {

signal::ReadRecord
makeRead(std::size_t bases, std::uint64_t seed)
{
    const genome::Genome g = genome::makeSynthetic(
        "read-src", {.length = bases, .seed = seed});
    signal::ReadRecord read;
    read.id = seed;
    read.bases = g.bases();
    Rng rng(seed * 17 + 3);
    const signal::SignalSimulator sim(pipeline::defaultKmerModel());
    sim.simulate(read, rng);
    return read;
}

TEST(Identity, ExactMatchIsOne)
{
    const auto read = makeRead(200, 1);
    EXPECT_DOUBLE_EQ(basecallIdentity(read.bases, read.bases), 1.0);
}

TEST(Identity, EmptyCases)
{
    EXPECT_DOUBLE_EQ(basecallIdentity({}, {}), 1.0);
    EXPECT_DOUBLE_EQ(basecallIdentity({}, {genome::Base::A}), 0.0);
    EXPECT_DOUBLE_EQ(basecallIdentity({genome::Base::A}, {}), 0.0);
}

TEST(Identity, SingleSubstitutionCountsOnce)
{
    auto a = makeRead(100, 2).bases;
    auto b = a;
    b[50] = genome::complement(b[50]);
    EXPECT_NEAR(basecallIdentity(a, b), 0.99, 1e-9);
}

TEST(Identity, DetectsShiftedSequences)
{
    const auto read = makeRead(300, 3).bases;
    std::vector<genome::Base> shifted(read.begin() + 3, read.end());
    EXPECT_GT(basecallIdentity(shifted, read), 0.98);
}

TEST(Oracle, ZeroErrorRateReproducesTruth)
{
    const auto read = makeRead(400, 4);
    OracleBasecaller oracle({0.0, 0.0, 0.0, 7});
    EXPECT_EQ(oracle.callAll(read), read.bases);
}

TEST(Oracle, ErrorRateMatchesProfile)
{
    const auto read = makeRead(4000, 5);
    const ErrorProfile profile = guppyFastProfile();
    OracleBasecaller oracle(profile);
    const auto called = oracle.callAll(read);
    const double identity = basecallIdentity(called, read.bases);
    EXPECT_NEAR(1.0 - identity, profile.totalRate(), 0.03);
}

TEST(Oracle, HacMoreAccurateThanFast)
{
    const auto read = makeRead(4000, 6);
    const auto hac =
        OracleBasecaller(guppyHacProfile()).callAll(read);
    const auto fast =
        OracleBasecaller(guppyFastProfile()).callAll(read);
    EXPECT_GT(basecallIdentity(hac, read.bases),
              basecallIdentity(fast, read.bases));
}

TEST(Oracle, PrefixCoversOnlySequencedBases)
{
    const auto read = makeRead(600, 7);
    OracleBasecaller oracle({0.0, 0.0, 0.0, 7});
    const auto prefix = oracle.call(read, 900); // ~100 bases worth
    EXPECT_LT(prefix.size(), 200u);
    EXPECT_GT(prefix.size(), 50u);
    // Called prefix must equal the true prefix.
    for (std::size_t i = 0; i < prefix.size(); ++i)
        EXPECT_EQ(prefix[i], read.bases[i]);
}

TEST(Oracle, DeterministicPerRead)
{
    const auto read = makeRead(500, 8);
    OracleBasecaller oracle(guppyHacProfile());
    EXPECT_EQ(oracle.callAll(read), oracle.callAll(read));
}

TEST(Oracle, InvalidProfileIsFatal)
{
    EXPECT_THROW(OracleBasecaller({0.5, 0.3, 0.3, 1}), FatalError);
}

TEST(Viterbi, DecodesCleanSignalAccurately)
{
    const ViterbiBasecaller viterbi(pipeline::defaultKmerModel());
    const auto read = makeRead(250, 9);
    const auto called = viterbi.callAll(read);
    ASSERT_FALSE(called.empty());
    const double identity = basecallIdentity(called, read.bases);
    // Event-HMM decoding tops out near Nanocall-era accuracy
    // (~60-70%): event segmentation errors and affine normalisation
    // ambiguity bound it well below modern DNN basecallers, which is
    // exactly why the paper treats Guppy as the baseline and why the
    // oracle basecaller handles controlled-accuracy sweeps here.
    EXPECT_GT(identity, 0.55);
    // Length must be in the right ballpark (no runaway stays/skips).
    EXPECT_NEAR(double(called.size()), double(read.bases.size()),
                0.3 * double(read.bases.size()));
}

TEST(Viterbi, EmptySignalYieldsNothing)
{
    const ViterbiBasecaller viterbi(pipeline::defaultKmerModel());
    signal::ReadRecord empty;
    EXPECT_TRUE(viterbi.callAll(empty).empty());
}

TEST(Viterbi, InvalidConfigIsFatal)
{
    ViterbiConfig config;
    config.stayProb = 0.7;
    config.skipProb = 0.5;
    EXPECT_THROW(
        ViterbiBasecaller(pipeline::defaultKmerModel(), {}, config),
        FatalError);
}

TEST(PerfModel, PublishedOpsCounts)
{
    EXPECT_DOUBLE_EQ(basecallerOps(BasecallerKind::Guppy).opsPerChunk,
                     2412e6);
    EXPECT_DOUBLE_EQ(
        basecallerOps(BasecallerKind::GuppyLite).opsPerChunk, 141e6);
    EXPECT_DOUBLE_EQ(sdtwOpsPerClassification(), 1400e6);
    EXPECT_DOUBLE_EQ(sdtwMemoryFootprintBytes(), 60e3);
}

TEST(PerfModel, JetsonLiteMatchesPaperThroughput)
{
    const BasecallerPerfModel jetson(BasecallerKind::GuppyLite,
                                     Device::JetsonXavier);
    EXPECT_DOUBLE_EQ(jetson.readUntilThroughputBasesPerSec(), 95700.0);
    // 41.5% of the MinION's 230,400 bases/s (paper §7.2).
    EXPECT_NEAR(jetson.poreCoverage(kMinionMaxBasesPerSec), 0.415,
                0.005);
}

TEST(PerfModel, TitanLiteKeepsUpWithMinion)
{
    const BasecallerPerfModel titan(BasecallerKind::GuppyLite,
                                    Device::TitanXp);
    EXPECT_GE(titan.readUntilThroughputBasesPerSec(),
              kMinionMaxBasesPerSec);
    EXPECT_DOUBLE_EQ(titan.poreCoverage(kMinionMaxBasesPerSec), 1.0);
}

TEST(PerfModel, LatenciesMatchPaper)
{
    const BasecallerPerfModel lite(BasecallerKind::GuppyLite,
                                   Device::TitanXp);
    const BasecallerPerfModel hac(BasecallerKind::Guppy,
                                  Device::TitanXp);
    EXPECT_DOUBLE_EQ(lite.decisionLatencyMs(), 149.0);
    EXPECT_GT(hac.decisionLatencyMs(), 1000.0);
    // 149 ms at 450 b/s ~ 60-70 wasted bases per decision (§7.2).
    EXPECT_NEAR(lite.wastedBasesPerDecision(), 67.0, 5.0);
}

TEST(PerfModel, HacSlowerThanLiteEverywhere)
{
    for (Device device : {Device::TitanXp, Device::JetsonXavier}) {
        const BasecallerPerfModel lite(BasecallerKind::GuppyLite,
                                       device);
        const BasecallerPerfModel hac(BasecallerKind::Guppy, device);
        EXPECT_LT(hac.readUntilThroughputBasesPerSec(),
                  lite.readUntilThroughputBasesPerSec());
        EXPECT_GT(hac.decisionLatencyMs(), lite.decisionLatencyMs());
    }
    EXPECT_EQ(allBasecallerPerfModels().size(), 4u);
}

} // namespace
} // namespace sf::basecall
