/**
 * @file
 * Unit tests for sf::signal — ADC, the nanopore signal simulator,
 * dataset generation and event segmentation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "genome/synthetic.hpp"
#include "pore/kmer_model.hpp"
#include "signal/adc.hpp"
#include "signal/dataset.hpp"
#include "signal/event.hpp"
#include "signal/read.hpp"
#include "signal/simulator.hpp"

namespace sf::signal {
namespace {

const pore::KmerModel &
model()
{
    static const pore::KmerModel m = pore::KmerModel::makeR941();
    return m;
}

TEST(Adc, CodesCoverRange)
{
    const Adc adc(40.0, 160.0);
    EXPECT_EQ(adc.digitize(40.0), 0u);
    EXPECT_EQ(adc.digitize(160.0), kAdcMax);
    EXPECT_EQ(adc.digitize(-10.0), 0u);    // rail clamp
    EXPECT_EQ(adc.digitize(500.0), kAdcMax);
}

TEST(Adc, RoundTripWithinLsb)
{
    const Adc adc(40.0, 160.0);
    const double lsb = (160.0 - 40.0) / double(kAdcMax);
    for (double pa = 41.0; pa < 159.0; pa += 3.7)
        EXPECT_NEAR(adc.toPa(adc.digitize(pa)), pa, lsb);
}

TEST(Adc, DegenerateRangeIsFatal)
{
    EXPECT_THROW(Adc(100.0, 100.0), FatalError);
    EXPECT_THROW(Adc(160.0, 40.0), FatalError);
}

ReadRecord
simulateToy(std::size_t bases, std::uint64_t seed,
            SimulatorConfig config = {})
{
    const genome::Genome g =
        genome::makeSynthetic("toy", {.length = bases, .seed = seed});
    const SignalSimulator sim(model(), config);
    ReadRecord record;
    record.bases = g.bases();
    Rng rng(seed * 31 + 7);
    sim.simulate(record, rng);
    return record;
}

TEST(Simulator, DwellsSumToSampleCount)
{
    const ReadRecord read = simulateToy(400, 1);
    std::size_t total = 0;
    for (auto d : read.dwells)
        total += d;
    EXPECT_EQ(total, read.raw.size());
    EXPECT_EQ(read.dwells.size(),
              read.bases.size() - pore::KmerModel::kK + 1);
}

TEST(Simulator, SamplesPerBaseNearSampleRateOverSpeed)
{
    const ReadRecord read = simulateToy(3000, 2);
    const double spb = double(read.raw.size()) / double(read.dwells.size());
    // 4000 Hz / ~450 b/s ~ 8.9 samples/base, with rate jitter.
    EXPECT_GT(spb, 5.5);
    EXPECT_LT(spb, 14.0);
    EXPECT_NEAR(4000.0 / read.translocationRate, spb, 1.2);
}

TEST(Simulator, DeterministicForSeed)
{
    const ReadRecord a = simulateToy(300, 3);
    const ReadRecord b = simulateToy(300, 3);
    ASSERT_EQ(a.raw.size(), b.raw.size());
    EXPECT_EQ(a.raw, b.raw);
}

TEST(Simulator, TooShortReadYieldsNoSamples)
{
    const SignalSimulator sim(model());
    ReadRecord record;
    record.bases = std::vector<genome::Base>(3, genome::Base::A);
    Rng rng(4);
    sim.simulate(record, rng);
    EXPECT_TRUE(record.raw.empty());
    EXPECT_TRUE(record.dwells.empty());
}

TEST(Simulator, SignalCorrelatesWithExpectedLevels)
{
    // With noise suppressed, the measured (pA-converted) signal must
    // track the k-mer model's expected levels closely.
    SimulatorConfig config;
    config.noiseScale = 0.01;
    config.driftPaPerSample = 0.0;
    config.gainStdv = 0.0;
    config.offsetStdvPa = 0.0;
    config.spikeProbability = 0.0;
    config.transitionAlpha = 1.0; // disable the sensor low-pass
    const ReadRecord read = simulateToy(500, 5, config);
    const SignalSimulator sim(model(), config);

    const auto expected = model().expectedSignalPa(read.bases);
    std::size_t sample = 0;
    RunningStats err;
    for (std::size_t w = 0; w < read.dwells.size(); ++w) {
        for (int s = 0; s < read.dwells[w]; ++s) {
            const double pa = sim.adc().toPa(read.raw[sample++]);
            err.add(std::abs(pa - double(expected[w])));
        }
    }
    EXPECT_LT(err.mean(), 0.25); // within ADC quantisation + tiny noise
}

TEST(Simulator, OffsetMismatchSpreadsPerReadMeans)
{
    // The per-pore bias-voltage mismatch (Figure 8a) must show up as
    // spread in per-read raw means; with mismatch disabled the means
    // cluster tightly.
    const genome::Genome g =
        genome::makeSynthetic("t", {.length = 400, .seed = 70});
    auto spread_for = [&](double offset_stdv) {
        SimulatorConfig config;
        config.gainStdv = 0.0;
        config.offsetStdvPa = offset_stdv;
        const SignalSimulator sim(model(), config);
        RunningStats means;
        Rng rng(71);
        for (int r = 0; r < 16; ++r) {
            ReadRecord read;
            read.bases = g.bases();
            sim.simulate(read, rng);
            RunningStats m;
            for (auto s : read.raw)
                m.add(s);
            means.add(m.mean());
        }
        return means.stdev();
    };
    EXPECT_GT(spread_for(15.0), 3.0 * spread_for(0.0));
}

TEST(Simulator, PrefixReturnsLeadingSamples)
{
    const ReadRecord read = simulateToy(400, 6);
    const auto prefix = read.prefix(100);
    ASSERT_EQ(prefix.size(), 100u);
    for (std::size_t i = 0; i < prefix.size(); ++i)
        EXPECT_EQ(prefix[i], read.raw[i]);
    EXPECT_EQ(read.prefix(1u << 30).size(), read.raw.size());
}

TEST(ReadLengthDist, RespectsTruncation)
{
    Rng rng(7);
    ReadLengthDist dist{5000.0, 0.6, 1000, 20000};
    for (int i = 0; i < 2000; ++i) {
        const auto len = dist.sample(rng);
        EXPECT_GE(len, 1000u);
        EXPECT_LE(len, 20000u);
    }
}

TEST(ReadLengthDist, MeanApproximatelyCorrect)
{
    Rng rng(8);
    ReadLengthDist dist{6000.0, 0.5, 300, 60000};
    RunningStats stats;
    for (int i = 0; i < 5000; ++i)
        stats.add(double(dist.sample(rng)));
    EXPECT_NEAR(stats.mean(), 6000.0, 400.0);
}

class DatasetTest : public ::testing::Test
{
  protected:
    DatasetTest()
        : target_(genome::makeSynthetic("virus", {.length = 20000,
                                                  .seed = 41})),
          background_(genome::makeSynthetic("host", {.length = 200000,
                                                     .seed = 42})),
          sim_(model()), gen_(target_, background_, sim_)
    {}

    genome::Genome target_;
    genome::Genome background_;
    SignalSimulator sim_;
    DatasetGenerator gen_;
};

TEST_F(DatasetTest, FractionApproximatelyRespected)
{
    DatasetSpec spec;
    spec.numReads = 400;
    spec.targetFraction = 0.25;
    spec.seed = 50;
    const Dataset data = gen_.generate(spec);
    EXPECT_EQ(data.reads.size(), 400u);
    EXPECT_NEAR(double(data.targetCount()), 100.0, 30.0);
    EXPECT_EQ(data.targetCount() + data.backgroundCount(),
              data.reads.size());
}

TEST_F(DatasetTest, DeterministicForSeed)
{
    DatasetSpec spec;
    spec.numReads = 20;
    spec.seed = 51;
    const Dataset a = gen_.generate(spec);
    const Dataset b = gen_.generate(spec);
    ASSERT_EQ(a.reads.size(), b.reads.size());
    for (std::size_t i = 0; i < a.reads.size(); ++i) {
        EXPECT_EQ(a.reads[i].raw, b.reads[i].raw);
        EXPECT_EQ(a.reads[i].origin, b.reads[i].origin);
    }
}

TEST_F(DatasetTest, ReadsCarryConsistentGroundTruth)
{
    DatasetSpec spec;
    spec.numReads = 50;
    spec.targetFraction = 0.5;
    spec.seed = 52;
    const Dataset data = gen_.generate(spec);
    for (const auto &read : data.reads) {
        const auto &source =
            read.isTarget() ? target_ : background_;
        EXPECT_EQ(read.sourceName, source.name());
        ASSERT_LE(read.sourcePos + read.lengthBases(), source.size());
        auto fragment = source.slice(read.sourcePos, read.lengthBases());
        if (read.reverseStrand)
            fragment = genome::reverseComplement(fragment);
        EXPECT_EQ(fragment, read.bases);
    }
}

TEST_F(DatasetTest, FragmentLengthClampedToGenome)
{
    Rng rng(53);
    const auto read =
        gen_.sampleRead(ReadOrigin::Target, 1u << 24, rng, 0);
    EXPECT_EQ(read.lengthBases(), target_.size());
}

TEST_F(DatasetTest, InvalidFractionIsFatal)
{
    DatasetSpec spec;
    spec.targetFraction = 1.5;
    EXPECT_THROW(gen_.generate(spec), FatalError);
}

TEST(EventDetector, SegmentsCleanStepSignal)
{
    // Three flat levels of 30 samples each, no noise.
    std::vector<double> signal;
    for (double level : {80.0, 110.0, 95.0}) {
        for (int i = 0; i < 30; ++i)
            signal.push_back(level);
    }
    const EventDetector detector;
    const auto events = detector.detect(signal);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_NEAR(events[0].meanPa, 80.0, 0.5);
    EXPECT_NEAR(events[1].meanPa, 110.0, 0.5);
    EXPECT_NEAR(events[2].meanPa, 95.0, 0.5);
}

TEST(EventDetector, EventCountTracksBaseCount)
{
    // On simulated data the number of events should be within a
    // factor ~2 of the number of k-mer steps.
    SimulatorConfig config;
    config.noiseScale = 0.5;
    const genome::Genome g =
        genome::makeSynthetic("t", {.length = 300, .seed = 60});
    const SignalSimulator sim(model(), config);
    ReadRecord read;
    read.bases = g.bases();
    Rng rng(61);
    sim.simulate(read, rng);

    std::vector<double> pa;
    pa.reserve(read.raw.size());
    for (auto code : read.raw)
        pa.push_back(sim.adc().toPa(code));

    const EventDetector detector;
    const auto events = detector.detect(pa);
    const double ratio =
        double(events.size()) / double(read.dwells.size());
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.0);
}

TEST(EventDetector, ShortSignalYieldsNothing)
{
    const EventDetector detector;
    EXPECT_TRUE(detector.detect(std::vector<double>(5, 100.0)).empty());
}

TEST(EventDetector, DegenerateWindowIsFatal)
{
    EventDetectorConfig config;
    config.window = 1;
    EXPECT_THROW(EventDetector{config}, FatalError);
}

} // namespace
} // namespace sf::signal
