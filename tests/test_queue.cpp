/**
 * @file
 * Tests for the bounded MPMC BoundedQueue — the backpressure point of
 * the streaming engine.  This suite carries the `quick` ctest label,
 * so it runs in every check.sh mode including the TSan leg
 * (scripts/check.sh --tsan), where the contention tests double as
 * race detectors: many producers and consumers hammering a tiny
 * queue, close() racing blocked peers, and drain-after-close.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "stream/chunk_queue.hpp"

namespace sf::stream {
namespace {

// ---------------------------------------------------------------- //
//                        single-thread edges                        //
// ---------------------------------------------------------------- //

TEST(BoundedQueue, FifoSingleThread)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(queue.push(i));
    int item = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(queue.pop(item));
        EXPECT_EQ(item, i);
    }
    EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, BatchPopRespectsLimitAndOrder)
{
    BoundedQueue<int> queue(16);
    for (int i = 0; i < 10; ++i)
        queue.push(i);
    std::vector<int> batch;
    ASSERT_TRUE(queue.popBatch(batch, 4));
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
    ASSERT_TRUE(queue.popBatch(batch, 100));
    EXPECT_EQ(batch.size(), 10u); // appended the remaining six
    EXPECT_EQ(batch.back(), 9);
}

TEST(BoundedQueue, CloseDrainsThenRefuses)
{
    BoundedQueue<int> queue(4);
    queue.push(1);
    queue.push(2);
    queue.close();
    EXPECT_FALSE(queue.push(3));
    int item = 0;
    EXPECT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 1);
    EXPECT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 2);
    EXPECT_FALSE(queue.pop(item));
}

TEST(BoundedQueue, ZeroCapacityIsFatal)
{
    EXPECT_THROW(BoundedQueue<int>(0), FatalError);
}

TEST(BoundedQueue, ZeroBatchPopIsFatal)
{
    BoundedQueue<int> queue(4);
    queue.push(1);
    std::vector<int> batch;
    EXPECT_THROW(queue.popBatch(batch, 0), FatalError);
}

// ---------------------------------------------------------------- //
//                     blocking and close wakeups                    //
// ---------------------------------------------------------------- //

TEST(BoundedQueue, BackpressureBlocksProducerUntilConsumed)
{
    BoundedQueue<int> queue(2);
    std::atomic<int> produced{0};
    std::thread producer([&] {
        for (int i = 0; i < 50; ++i) {
            queue.push(i);
            produced.fetch_add(1);
        }
    });
    // The producer cannot run ahead of the capacity-2 buffer.
    std::vector<int> seen;
    int item = 0;
    while (seen.size() < 50 && queue.pop(item)) {
        seen.push_back(item);
        EXPECT_LE(produced.load(), int(seen.size()) + 2);
    }
    producer.join();
    ASSERT_EQ(seen.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(seen[std::size_t(i)], i);
}

TEST(BoundedQueue, CloseWakesBlockedProducerWithoutEnqueuing)
{
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.push(7)); // now full
    std::atomic<bool> push_returned{false};
    std::atomic<bool> push_result{true};
    std::thread producer([&] {
        // Blocks on the full queue until close() wakes it.
        push_result.store(queue.push(8));
        push_returned.store(true);
    });
    // Give the producer a moment to reach the blocked wait; the test
    // is correct without the sleep, it just makes the interesting
    // interleaving overwhelmingly likely.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(push_returned.load());
    queue.close();
    producer.join();
    EXPECT_TRUE(push_returned.load());
    EXPECT_FALSE(push_result.load()); // refused, not enqueued
    // Only the pre-close item drains.
    int item = 0;
    EXPECT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 7);
    EXPECT_FALSE(queue.pop(item));
}

TEST(BoundedQueue, CloseWakesBlockedConsumer)
{
    BoundedQueue<int> queue(4);
    std::atomic<bool> pop_returned{false};
    std::atomic<bool> pop_result{true};
    std::thread consumer([&] {
        int item = 0;
        pop_result.store(queue.pop(item)); // blocks: queue empty
        pop_returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(pop_returned.load());
    queue.close();
    consumer.join();
    EXPECT_TRUE(pop_returned.load());
    EXPECT_FALSE(pop_result.load()); // closed and drained
}

// ---------------------------------------------------------------- //
//                        contention stress                          //
// ---------------------------------------------------------------- //

TEST(BoundedQueue, FifoOrderPreservedPerProducerUnderSingleConsumer)
{
    // Items are (producer, sequence) pairs; with one consumer, each
    // producer's items must arrive in its own push order even while
    // producers interleave through a tiny buffer.
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    BoundedQueue<std::pair<int, int>> queue(3);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(queue.push({p, i}));
        });
    }
    std::vector<int> next_expected(kProducers, 0);
    std::pair<int, int> item;
    for (int n = 0; n < kProducers * kPerProducer; ++n) {
        ASSERT_TRUE(queue.pop(item));
        EXPECT_EQ(item.second, next_expected[std::size_t(item.first)])
            << "producer " << item.first << " reordered";
        ++next_expected[std::size_t(item.first)];
    }
    for (auto &producer : producers)
        producer.join();
    EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEachItemOnce)
{
    // The TSan centrepiece: heavy two-sided contention on a queue
    // much smaller than the in-flight item count, batched pops, and
    // a close() while consumers are still draining.  Every item must
    // come out exactly once.
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 250;
    constexpr int kTotal = kProducers * kPerProducer;
    BoundedQueue<int> queue(5);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(queue.push(p * kPerProducer + i));
        });
    }
    std::vector<std::atomic<int>> delivered(kTotal);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            std::vector<int> batch;
            while (queue.popBatch(batch, 7)) {
                for (int item : batch)
                    delivered[std::size_t(item)].fetch_add(1);
                batch.clear();
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    queue.close(); // consumers drain the tail, then exit
    for (auto &consumer : consumers)
        consumer.join();
    for (int i = 0; i < kTotal; ++i)
        ASSERT_EQ(delivered[std::size_t(i)].load(), 1)
            << "item " << i << " delivered wrong number of times";
}

} // namespace
} // namespace sf::stream
